package rt

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSlotReuseSendCountReset: request-pool slots recycle LIFO, and a send
// completion never writes the byte count — so a send landing on a slot that
// previously carried a 5-byte receive must still report 0, not the stale 5.
func TestSlotReuseSendCountReset(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			c := NewCluster(2, m)
			defer c.Close()
			r := c.Rank(0)

			// A receive puts 5 into some slot's count, then releases it.
			c.Rank(1).Send([]byte("hello"), 0, 1)
			if n := r.Recv(make([]byte, 8), 1, 1); n != 5 {
				t.Fatalf("setup recv returned %d, want 5", n)
			}

			// The free list is a stack, so this send reuses that exact slot.
			h := r.Isend([]byte("xyz"), 1, 2)
			if n := r.Wait(h); n != 0 {
				t.Fatalf("send on recycled slot reported %d bytes, want 0 (stale recv count leaked)", n)
			}
			buf := make([]byte, 8)
			if n := c.Rank(1).Recv(buf, 0, 2); n != 3 || string(buf[:n]) != "xyz" {
				t.Fatalf("drain recv got %q", buf[:n])
			}
		})
	}
}

// TestCloseJoinsOffloadGoroutines: Close must block until every offload
// goroutine has exited — repeatedly creating and closing clusters must not
// accumulate background goroutines.
func TestCloseJoinsOffloadGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		c := NewCluster(4, Offload)
		c.Rank(0).Send([]byte("x"), 1, 0)
		buf := make([]byte, 1)
		c.Rank(1).Recv(buf, 0, 0)
		c.Close()
		c.Close() // idempotent: second Close returns immediately
	}
	// Close joins synchronously; the settle loop only absorbs unrelated
	// runtime goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after 10 create/Close cycles", before, got)
	}
}

// TestTruncationSurfacesError: a message longer than the posted buffer must
// fail that one request with ErrTruncate — not panic the offload goroutine
// (which previously took down the whole process). Covers both the
// posted-then-matched path and the unexpected-message path.
func TestTruncationSurfacesError(t *testing.T) {
	for _, m := range modes() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			c := NewCluster(2, m)
			defer c.Close()

			// Posted-receive path: recv first, oversized send lands on it.
			h := c.Rank(1).Irecv(make([]byte, 4), 0, 3)
			c.Rank(0).Send(make([]byte, 16), 1, 3)
			n, err := c.Rank(1).WaitErr(h)
			if !errors.Is(err, ErrTruncate) || n != 0 {
				t.Fatalf("posted path: WaitErr = (%d, %v), want (0, ErrTruncate)", n, err)
			}

			// Unexpected path: oversized message queued before the recv posts.
			c.Rank(0).Send(make([]byte, 32), 1, 4)
			time.Sleep(time.Millisecond)
			h2 := c.Rank(1).Irecv(make([]byte, 4), 0, 4)
			n, err = c.Rank(1).WaitErr(h2)
			if !errors.Is(err, ErrTruncate) || n != 0 {
				t.Fatalf("unexpected path: WaitErr = (%d, %v), want (0, ErrTruncate)", n, err)
			}

			// Wait/Test report the raw sentinel as a negative count.
			c.Rank(0).Send(make([]byte, 16), 1, 5)
			h3 := c.Rank(1).Irecv(make([]byte, 4), 0, 5)
			if n := c.Rank(1).Wait(h3); n >= 0 {
				t.Fatalf("Wait on truncated recv = %d, want negative sentinel", n)
			}

			// The failed slot recycles cleanly: the next op is unaffected.
			c.Rank(0).Send([]byte("ok"), 1, 6)
			buf := make([]byte, 8)
			if n := c.Rank(1).Recv(buf, 0, 6); n != 2 || string(buf[:n]) != "ok" {
				t.Fatalf("post-truncation recv got %q", buf[:n])
			}
		})
	}
}

// TestRegisteredThreadsFIFO: each registered thread posts through a private
// SPSC shard; per-thread message order must survive the round-robin drain
// (the MPI non-overtaking rule per (source, tag)).
func TestRegisteredThreadsFIFO(t *testing.T) {
	c := NewCluster(2, Offload)
	defer c.Close()
	const threads = 4
	const iters = 100
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(2)
		go func() { // sender thread with a private shard
			defer wg.Done()
			snd := c.Rank(0).RegisterThread()
			for i := 0; i < iters; i++ {
				snd.Send([]byte{byte(i)}, 1, 100+th)
			}
		}()
		go func() { // receiver thread, also sharded
			defer wg.Done()
			rcv := c.Rank(1).RegisterThread()
			buf := make([]byte, 1)
			for i := 0; i < iters; i++ {
				rcv.Recv(buf, 0, 100+th)
				if buf[0] != byte(i) {
					t.Errorf("thread %d: message %d overtaken, got %d", th, i, buf[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestThreadsBeyondShardCount: registrants past ShardCount share the
// overflow shard — everything still completes, nothing is lost.
func TestThreadsBeyondShardCount(t *testing.T) {
	c := NewClusterOpts(2, Offload, Options{ShardCount: 2})
	defer c.Close()
	const threads = 6
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(2)
		go func() {
			defer wg.Done()
			snd := c.Rank(0).RegisterThread()
			for i := 0; i < 50; i++ {
				snd.Send([]byte{byte(i)}, 1, th)
			}
		}()
		go func() {
			defer wg.Done()
			buf := make([]byte, 1)
			for i := 0; i < 50; i++ {
				c.Rank(1).Recv(buf, 0, th)
				if buf[0] != byte(i) {
					t.Errorf("thread %d overtaken at %d: got %d", th, i, buf[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMultiAgentRT: with Options.Agents > 1 each rank runs one offload
// goroutine per hash(peer, tag) partition. Per-(peer, tag) FIFO must
// survive because both ends route a conversation to the same partition —
// this is the -race probe for the partitioned rt engine (satellite 3).
func TestMultiAgentRT(t *testing.T) {
	c := NewClusterOpts(2, Offload, Options{Agents: 3, ShardCount: 8})
	defer c.Close()
	if got := c.AgentsPerRank(); got != 3 {
		t.Fatalf("AgentsPerRank = %d, want 3", got)
	}
	const threads = 6
	const iters = 200
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(2)
		go func() { // sender thread with a private shard in every partition
			defer wg.Done()
			snd := c.Rank(0).RegisterThread()
			for i := 0; i < iters; i++ {
				snd.Send([]byte{byte(i)}, 1, 100+th)
			}
		}()
		go func() {
			defer wg.Done()
			rcv := c.Rank(1).RegisterThread()
			buf := make([]byte, 1)
			for i := 0; i < iters; i++ {
				rcv.Recv(buf, 0, 100+th)
				if buf[0] != byte(i) {
					t.Errorf("thread %d: message %d overtaken, got %d", th, i, buf[0])
					return
				}
			}
		}()
	}
	wg.Wait()
	// Spot-check partition routing is consistent: the same (peer, tag)
	// always lands on the same engine index on a given rank.
	r := c.Rank(0)
	for tag := 0; tag < 32; tag++ {
		if a, b := r.engIdx(1, tag), r.engIdx(1, tag); a != b {
			t.Fatalf("engIdx not stable for tag %d: %d vs %d", tag, a, b)
		}
		if i := r.engIdx(1, tag); i < 0 || i >= 3 {
			t.Fatalf("engIdx(1, %d) = %d out of range", tag, i)
		}
	}
}

// TestMultiAgentDirectIgnored: Direct mode always runs a single partition —
// Agents is an offload-path knob and must not change locking semantics.
func TestMultiAgentDirectIgnored(t *testing.T) {
	c := NewClusterOpts(2, Direct, Options{Agents: 4})
	defer c.Close()
	if got := c.AgentsPerRank(); got != 1 {
		t.Fatalf("Direct AgentsPerRank = %d, want 1", got)
	}
	c.Rank(0).Send([]byte("hi"), 1, 0)
	buf := make([]byte, 8)
	if n := c.Rank(1).Recv(buf, 0, 0); n != 2 || string(buf[:n]) != "hi" {
		t.Fatalf("direct recv got %q", buf[:n])
	}
}

// BenchmarkShardedVsSharedPost is the tentpole's wall-clock claim in
// miniature: concurrent threads posting sends through private shards
// (RegisterThread) versus all contending on the shared overflow MPMC (plain
// Rank calls — the pre-sharding behaviour). Run with -cpu to vary thread
// count; cmd/mtbench sweeps this properly into BENCH_mtscale.json.
func BenchmarkShardedVsSharedPost(b *testing.B) {
	for _, variant := range []string{"shared", "sharded"} {
		variant := variant
		b.Run(variant, func(b *testing.B) {
			c := NewClusterOpts(2, Offload, Options{ShardCount: 64})
			defer c.Close()
			r := c.Rank(0)
			sink := c.Rank(1)
			go func() { // keep the transport drained
				buf := make([]byte, 64)
				for !sink.stop.Load() {
					h := sink.Irecv(buf, 0, 0)
					sink.Wait(h)
				}
			}()
			payload := make([]byte, 64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var th *Thread
				if variant == "sharded" {
					th = r.RegisterThread()
				}
				hs := make([]Handle, 0, 32)
				flush := func() {
					for _, h := range hs {
						r.Wait(h)
					}
					hs = hs[:0]
				}
				for pb.Next() {
					if th != nil {
						hs = append(hs, th.Isend(payload, 1, 0))
					} else {
						hs = append(hs, r.Isend(payload, 1, 0))
					}
					if len(hs) == cap(hs) {
						flush()
					}
				}
				flush()
			})
		})
	}
}
