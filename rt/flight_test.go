package rt

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpioffload/internal/obs/critpath"
	"mpioffload/internal/obs/telemetry"
)

// TestFlightDumpOnKillRank is the acceptance path: a forced KillRank makes
// the watchdog surface ErrRankFailed, the automatic post-mortem fires, and
// the dump parses with critpath.ReadChrome (the tracetool reader) and
// contains the command lifecycle plus the watchdog instant.
func TestFlightDumpOnKillRank(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.json")
	c := NewClusterOpts(2, Offload, Options{FlightDump: dump})
	defer c.Close()
	c.SetWatchdog(30 * time.Millisecond)

	// Some completed traffic first, so the dump has full spans.
	r0, r1 := c.Rank(0), c.Rank(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for i := 0; i < 10; i++ {
			r1.Recv(buf, 0, i)
		}
	}()
	msg := make([]byte, 64)
	for i := 0; i < 10; i++ {
		r0.Send(msg, 1, i)
	}
	wg.Wait()

	// Now a receive from a rank we kill: WaitErr must blame the dead peer
	// and the first trip must write the post-mortem.
	h := r0.Irecv(make([]byte, 64), 1, 99)
	c.KillRank(1)
	_, err := r0.WaitErr(h)
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("WaitErr after KillRank = %v, want ErrRankFailed", err)
	}
	if !c.FlightDumped() {
		t.Fatal("watchdog trip did not fire the automatic flight dump")
	}

	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	defer f.Close()
	runs, err := critpath.ReadChrome(f)
	if err != nil {
		t.Fatalf("flight dump does not parse with ReadChrome: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("flight dump has %d runs, want 1", len(runs))
	}
	run := runs[0]
	if !strings.HasPrefix(run.Label, "flight ") {
		t.Errorf("run label %q, want flight prefix", run.Label)
	}
	if len(run.Events) < 2 {
		t.Fatalf("flight dump has %d rank streams, want 2", len(run.Events))
	}
	total, watchdogs := 0, 0
	for _, evs := range run.Events {
		total += len(evs)
		for _, ev := range evs {
			if ev.Kind.String() == "watchdog" {
				watchdogs++
			}
		}
	}
	if total == 0 {
		t.Fatal("flight dump carries no events")
	}
	if watchdogs == 0 {
		t.Error("flight dump has no watchdog instant (trip + kill should both record)")
	}

	// The embedded metadata names the incident.
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metadata struct {
			Flight struct {
				Reason string `json:"reason"`
				Events int    `json:"events"`
			} `json:"flight"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if doc.Metadata.Flight.Reason != "rank-failed" {
		t.Errorf("flight reason %q, want rank-failed", doc.Metadata.Flight.Reason)
	}
	if doc.Metadata.Flight.Events == 0 {
		t.Error("flight metadata reports zero events")
	}

	// Only the first trip dumps: a second timed-out wait must not rewrite
	// the post-mortem.
	before, _ := os.Stat(dump)
	h2 := r0.Irecv(make([]byte, 64), 1, 100)
	if _, err := r0.WaitErr(h2); err == nil {
		t.Fatal("second wait on dead peer succeeded")
	}
	after, _ := os.Stat(dump)
	if before.ModTime() != after.ModTime() || before.Size() != after.Size() {
		t.Error("second watchdog trip rewrote the flight dump")
	}
}

// TestFlightDumpConcurrent exercises DumpFlight while traffic is in flight
// (the -race probe for the seqlock ring): concurrent writers on every rank
// plus a reader snapshotting mid-burst must be race-clean and produce a
// parsable dump.
func TestFlightDumpConcurrent(t *testing.T) {
	c := NewClusterOpts(2, Offload, Options{FlightRingCap: 256, Agents: 2})
	defer c.Close()
	const msgs = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		th := c.Rank(1).RegisterThread()
		for i := 0; i < msgs; i++ {
			th.Recv(buf, 0, i%7)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := c.Rank(0).RegisterThread()
		msg := []byte("payload!")
		for i := 0; i < msgs; i++ {
			th.Send(msg, 1, i%7)
		}
	}()
	// Snapshot repeatedly while the burst runs — wraparound plus writers.
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := c.DumpFlight(&buf, "mid-burst"); err != nil {
			t.Fatalf("DumpFlight under traffic: %v", err)
		}
		if _, err := critpath.ReadChrome(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("mid-burst dump does not parse: %v", err)
		}
	}
	wg.Wait()
}

// TestFlightRingWraps verifies the ring is bounded: far more events than
// capacity leave exactly capacity retained records.
func TestFlightRingWraps(t *testing.T) {
	ring := newFlightRing(64)
	for i := 0; i < 1000; i++ {
		ring.record(int64(i), int64(i), packFlight(fkComplete, 0, 1, 2))
	}
	evs := ring.snapshot()
	if len(evs) != 64 {
		t.Fatalf("ring retained %d records, want 64", len(evs))
	}
	if ring.recorded() != 1000 {
		t.Fatalf("recorded() = %d, want 1000", ring.recorded())
	}
	// Oldest-first order, and only the newest 64 survive.
	for i, ev := range evs {
		if want := int64(1000 - 64 + i); ev.ts != want {
			t.Fatalf("evs[%d].ts = %d, want %d", i, ev.ts, want)
		}
	}
}

func TestFlightMetaPacking(t *testing.T) {
	cases := []struct {
		kind              flightKind
		agent, peer, tag  int
	}{
		{fkSubmitSend, 0, 1, 0},
		{fkIssueRecv, 3, 1023, 77},
		{fkWatchdog, -1, 5, 0},
		{fkComplete, 255, flightFieldMask, flightFieldMask},
	}
	for _, tc := range cases {
		ev := unpackFlight(1, 42, 7, packFlight(tc.kind, tc.agent, tc.peer, tc.tag))
		if ev.kind != tc.kind || ev.peer != tc.peer&flightFieldMask || ev.tag != tc.tag&flightFieldMask {
			t.Errorf("pack/unpack(%v) = %+v", tc, ev)
		}
		if tc.agent >= 0 && tc.agent < 128 && ev.agent != tc.agent {
			t.Errorf("agent %d round-tripped to %d", tc.agent, ev.agent)
		}
		if tc.agent == -1 && ev.agent != -1 {
			t.Errorf("agent -1 round-tripped to %d", ev.agent)
		}
	}
}

// TestServeTelemetryLive scrapes the cluster's endpoint during traffic: the
// ISSUE's curl-able acceptance criterion, minus the shell.
func TestServeTelemetryLive(t *testing.T) {
	c := NewClusterOpts(2, Offload, Options{Agents: 2})
	defer c.Close()
	srv, _, err := c.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const msgs = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8)
		for i := 0; i < msgs; i++ {
			c.Rank(1).Recv(buf, 0, i%5)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg := []byte("12345678")
		for i := 0; i < msgs; i++ {
			c.Rank(0).Send(msg, 1, i%5)
		}
	}()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape mid-traffic: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wg.Wait()

	if err := telemetry.ValidatePrometheus(body); err != nil {
		t.Fatalf("scrape is not valid Prometheus text format: %v\n%s", err, body)
	}
	for _, want := range []string{
		`rt_agent_duty{rank="0",agent="0"}`,
		`rt_agent_duty{rank="1",agent="1"}`,
		`rt_cmdq_depth{rank="0",agent="0"}`,
		`rt_sends_total{rank="0"}`,
		`rt_inflight{rank="1"}`,
		`rt_polls_total{rank="0"}`,
		`rt_polls_per_completion{rank="0"}`,
		`rt_net_sent_bytes_total{rank="0"}`,
		`rt_net_recv_bytes_total{rank="1"}`,
		`rt_net_sent_frames_total{rank="0"}`,
		`rt_net_send_errors_total{rank="0"}`,
		"rt_agents_per_rank 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// After the burst a fresh scrape must show every send counted.
	resp, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "rt_sends_total{rank=\"0\"} 200") {
		t.Errorf("post-burst scrape missing rt_sends_total=200:\n%s", grepLines(string(body), "rt_sends_total"))
	}
	// The transport byte counters moved: 200 sends of 8 B payload means at
	// least 1600 payload-carrying wire bytes left rank 0.
	if strings.Contains(string(body), "rt_net_sent_frames_total{rank=\"0\"} 0") {
		t.Errorf("wire counters never advanced:\n%s", grepLines(string(body), "rt_net_"))
	}
	// Duty timing actually charged wall time somewhere.
	st := c.Rank(0).engines[0].busyNs.Load() + c.Rank(0).engines[0].idleNs.Load()
	if st == 0 {
		t.Error("telemetry attach did not activate duty-cycle timing")
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestStatsCoherent verifies the double-read snapshot: on a quiescent
// cluster after a known burst, Stats must return exactly-consistent totals
// (and under load, the retry loop is exercised by the -race probes above).
func TestStatsCoherent(t *testing.T) {
	c := NewCluster(2, Offload)
	defer c.Close()
	buf := make([]byte, 8)
	msg := []byte("12345678")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.Rank(1).Recv(buf, 0, 3)
		}
	}()
	for i := 0; i < 50; i++ {
		c.Rank(0).Send(msg, 1, 3)
	}
	<-done
	s := c.Stats()
	if s.Sends != 50 || s.Recvs != 50 {
		t.Fatalf("coherent Stats = sends %d recvs %d, want 50/50", s.Sends, s.Recvs)
	}
	// Two consecutive snapshots of a quiescent cluster are identical — the
	// equality the retry loop relies on.
	if s2 := c.Stats(); s2 != s {
		t.Error("quiescent snapshots differ")
	}
}
