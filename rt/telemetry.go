package rt

// Live telemetry for the wall-clock cluster: per-agent duty cycle and
// queue depth, per-rank operation rates, in-flight requests and watchdog
// arming, served over HTTP as Prometheus text format and expvar JSON.
//
// All samplers read counters the hot paths already maintain — scraping
// costs the scraper's goroutine a handful of atomic loads and the
// instrumented code nothing. The only instrumentation that activates with
// a registry attached is the offload loops' duty-cycle timing (two
// time.Now calls per wakeup), gated on Cluster.telemOn.

import (
	"fmt"
	"time"

	"mpioffload/internal/obs"
	"mpioffload/internal/obs/telemetry"
)

// AttachTelemetry registers the cluster's live metrics with reg and turns
// on duty-cycle timing in the offload loops. Metric names follow the
// rt_* family: rt_agent_duty{rank,agent}, rt_cmdq_depth{rank,agent},
// rt_sends_total{rank}, rt_recvs_total{rank}, rt_progress_total{rank},
// rt_polls_total{rank}, rt_polls_per_completion{rank}, rt_inflight{rank},
// rt_watchdog_armed{rank}, rt_watchdog_trips_total{rank},
// rt_posts_per_sec{rank}, rt_qwait_ns{rank}, rt_service_ns{rank}, and the
// wire's rt_net_sent_bytes_total{rank} / rt_net_recv_bytes_total{rank} /
// rt_net_sent_frames_total{rank} / rt_net_recv_frames_total{rank} /
// rt_net_send_errors_total{rank} from the rank's transport endpoint.
func (c *Cluster) AttachTelemetry(reg *telemetry.Registry) {
	c.telemStartNs.Store(time.Now().UnixNano())
	c.telemOn.Store(true)

	reg.Gauge("rt_ranks", "ranks in the cluster").Set(float64(len(c.ranks)))
	reg.Gauge("rt_agents_per_rank", "offload goroutines per rank").Set(float64(c.AgentsPerRank()))
	reg.Gauge("rt_mode", "0=direct (global lock), 1=offload").Set(float64(c.mode))

	for _, r := range c.ranks {
		r := r
		rl := fmt.Sprintf(`{rank="%d"}`, r.id)
		reg.CounterFunc("rt_sends_total"+rl, "sends posted",
			func() float64 { return float64(r.Sends.Load()) })
		reg.CounterFunc("rt_recvs_total"+rl, "receives posted",
			func() float64 { return float64(r.Recvs.Load()) })
		reg.CounterFunc("rt_progress_total"+rl, "messages drained from the inbox",
			func() float64 { return float64(r.Progress.Load()) })
		reg.CounterFunc("rt_polls_total"+rl, "engine progress polls",
			func() float64 { return float64(r.Polls.Load()) })
		reg.GaugeFunc("rt_polls_per_completion"+rl, "polls per completed operation (polling overhead)",
			func() float64 {
				done := r.Sends.Load() + r.Recvs.Load()
				if done == 0 {
					return 0
				}
				return float64(r.Polls.Load()) / float64(done)
			})
		reg.CounterFunc("rt_net_sent_bytes_total"+rl, "payload bytes handed to the wire",
			func() float64 { return float64(r.ep.Stats().BytesSent) })
		reg.CounterFunc("rt_net_recv_bytes_total"+rl, "payload bytes delivered by the wire",
			func() float64 { return float64(r.ep.Stats().BytesRecv) })
		reg.CounterFunc("rt_net_sent_frames_total"+rl, "frames handed to the wire",
			func() float64 { return float64(r.ep.Stats().FramesSent) })
		reg.CounterFunc("rt_net_recv_frames_total"+rl, "frames delivered by the wire",
			func() float64 { return float64(r.ep.Stats().FramesRecv) })
		reg.CounterFunc("rt_net_send_errors_total"+rl, "wire sends that failed or were dropped at a dark NIC",
			func() float64 { return float64(r.ep.Stats().SendErrs) })
		reg.CounterFunc("rt_watchdog_trips_total"+rl, "WaitErr deadline expirations",
			func() float64 { return float64(r.WatchdogTrips.Load()) })
		reg.GaugeFunc("rt_inflight"+rl, "request-pool slots currently allocated",
			func() float64 { return float64(r.pool.InUse()) })
		reg.GaugeFunc("rt_watchdog_armed"+rl, "waiters currently spinning under a deadline",
			func() float64 { return float64(r.wdArmed.Load()) })
		reg.GaugeFunc("rt_posts_per_sec"+rl, "operation post rate since telemetry attach",
			func() float64 {
				el := time.Now().UnixNano() - c.telemStartNs.Load()
				if el <= 0 {
					return 0
				}
				return float64(r.Sends.Load()+r.Recvs.Load()) / (float64(el) / 1e9)
			})
		reg.HistogramFunc("rt_qwait_ns"+rl, "command queue wait (needs SetStatsEnabled)",
			func() obs.Hist { return r.qwaitH.Snapshot() })
		reg.HistogramFunc("rt_service_ns"+rl, "offload service time (needs SetStatsEnabled)",
			func() obs.Hist { return r.serviceH.Snapshot() })

		for _, e := range r.engines {
			e := e
			al := fmt.Sprintf(`{rank="%d",agent="%d"}`, r.id, e.idx)
			reg.GaugeFunc("rt_agent_duty"+al, "busy fraction of the agent's wall time",
				func() float64 {
					busy, idle := e.busyNs.Load(), e.idleNs.Load()
					if busy+idle == 0 {
						return 0
					}
					return float64(busy) / float64(busy+idle)
				})
			reg.GaugeFunc("rt_cmdq_depth"+al, "commands waiting in the agent's queue",
				func() float64 { return float64(e.cq.Len()) })
		}
	}
}

// ServeTelemetry builds a fresh registry, attaches the cluster's metrics
// and serves them over HTTP on addr (":9090", "127.0.0.1:0", ...):
// /metrics is Prometheus text format, /vars expvar-style JSON. Returns the
// running server (query Addr for the bound port; Close to stop).
func (c *Cluster) ServeTelemetry(addr string) (*telemetry.Server, *telemetry.Registry, error) {
	reg := telemetry.New()
	c.AttachTelemetry(reg)
	srv, err := reg.Serve(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, reg, nil
}
