// Package rt is a real-time, genuinely concurrent implementation of the
// paper's offload design: ranks live in one process, application threads
// are goroutines, and time is wall-clock. It exists alongside the
// deterministic simulator to demonstrate the contribution as real code:
//
//   - Direct mode models MPI_THREAD_MULTIPLE: every operation takes the
//     rank's global mutex to touch the matching engine — application
//     threads contend exactly the way §2.2/Fig 6 describe.
//   - Offload mode is §3: application threads serialize calls into the
//     sharded lock-free command queue (internal/queue.Sharded) and receive
//     request-pool handles (internal/reqpool); a dedicated offload
//     goroutine is the only thread that touches the matching engine, so no
//     mutex exists at all, and it drives progress whenever idle.
//
// Submission is sharded (§3.3 under contention): a goroutine that calls
// Rank.RegisterThread gets a Thread handle backed by a private SPSC ring —
// posting is two plain stores, with no CAS on a shared cache line no
// matter how many threads post concurrently. Calls made directly on the
// Rank go through the shared MPMC overflow shard (the pre-sharding
// behaviour, kept as the measurable baseline). The offload goroutine
// drains all shards round-robin in batches of up to the cluster's
// CmdBatchMax before each progress round.
//
// The wire is pluggable (internal/transport): the default Loopback
// backend is the historical in-process "NIC" — each rank's inbox is a
// lock-free MPMC queue that senders enqueue into directly, payloads
// copied on send and on receive (the eager protocol's two copies) — while
// Options.Transport substitutes real TCP or Unix-domain sockets, and
// NewWorkerCluster runs each rank as its own OS process (launched by
// cmd/mpirun, rendezvousing through a shared directory). The command
// queue, request pool and offload loop are identical over every backend;
// only doSend and the delivery upcall touch the wire.
//
// Matching is exact (communicator, tag, source) — the wildcard-free common
// case — and non-overtaking per (source, tag) because the inbox preserves
// per-producer FIFO order.
//
// Options.Agents generalizes Offload mode to N offload goroutines per rank
// (mirroring the simulator's multi-agent engine): the matching state is
// partitioned by hash(peer, tag), each agent owns one partition — its own
// command queue, inbox and matching maps — and every send, receive and
// delivery for a given (peer, tag) routes to the same partition on both
// ends, so the single-owner matching discipline and the per-(peer, tag)
// FIFO guarantee survive unchanged with zero locks added. The default of
// one agent is the paper's configuration and the historical behaviour.
package rt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpioffload/internal/obs"
	"mpioffload/internal/queue"
	"mpioffload/internal/reqpool"
	"mpioffload/internal/transport"
)

// ErrTimeout is returned by WaitErr when a request misses the cluster's
// watchdog deadline (wall-clock here; the simulator's counterpart is
// mpi.ErrTimeout in virtual time).
var ErrTimeout = errors.New("rt: request deadline exceeded")

// ErrTruncate is returned by WaitErr when a message longer than the posted
// receive buffer arrived. The buffer contents are undefined (the payload is
// dropped, mirroring MPI_ERR_TRUNCATE); Wait and Test report it as a
// negative byte count.
var ErrTruncate = errors.New("rt: message truncated (receive buffer too small)")

// ErrRankFailed is returned by WaitErr when the watchdog deadline expires
// and the operation's peer rank has been killed (Cluster.KillRank) — the
// ULFM-style distinction between "slow" (ErrTimeout) and "dead". Use
// errors.Is to test for it.
var ErrRankFailed = errors.New("rt: peer rank failed")

// truncSentinel is the per-slot byte-count sentinel for a truncated
// receive: Wait/Test surface it as a negative count, WaitErr decodes it to
// ErrTruncate.
const truncSentinel = -1

// Mode selects how application threads interact with the rank's engine.
type Mode int

// Direct takes a mutex per call (THREAD_MULTIPLE); Offload routes calls
// through the command queue to a dedicated goroutine (the paper's design).
const (
	Direct Mode = iota
	Offload
)

// String names the mode.
func (m Mode) String() string {
	if m == Offload {
		return "offload"
	}
	return "direct"
}

type message struct {
	src, tag int
	data     []byte
}

type matchKey struct{ src, tag int }

// pending is a posted receive awaiting a message.
type pending struct {
	slot int
	buf  []byte
	n    *int32 // received length, written before the done flag
}

// rtEngine is one offload agent's partition of a rank's engine: its own
// command queue, inbox and matching maps. With one agent (the default) the
// single partition is the whole engine. All (peer, tag) routing — command
// submission, wire delivery, receive posting — lands on the same partition
// index on both ends, so each partition's matching state has exactly one
// owning goroutine and no locks exist.
type rtEngine struct {
	idx        int // agent index within the rank
	inbox      *queue.MPMC[message]
	posted     map[matchKey][]pending
	unexpected map[matchKey][]message
	cq         *queue.Sharded[cmd]

	// Doorbell for the parked agent: submitters and the delivery upcall
	// ring it (when napping says anyone is listening) so an idle agent
	// wakes in microseconds instead of a timer tick.
	bell    chan struct{}
	napping atomic.Bool

	// Live-telemetry duty accounting, charged by the offload loop only
	// while the cluster has a telemetry registry attached.
	busyNs, idleNs atomic.Int64
}

// Rank is one process of the real-time cluster.
type Rank struct {
	id      int
	cluster *Cluster
	mode    Mode

	pool  *reqpool.Pool
	count []int32 // per-slot received byte counts (truncSentinel = error)
	peer  []int32 // per-slot peer rank, so WaitErr can blame a dead peer

	// ep is the rank's attachment to the wire; flowSeq stamps outgoing
	// frames with the repo-wide causal flow id ((id+1)<<32 | seq).
	ep      transport.Endpoint
	flowSeq atomic.Uint64

	// Doorbell for parked waiters: every completion rings it while anyone
	// is napping in Wait/WaitErr. Wake-one is deliberate — a waiter woken
	// by someone else's completion just re-checks and re-parks, and the
	// napFallback timeout bounds the rare lost-wakeup race.
	doneBell chan struct{}
	waiters  atomic.Int32

	failed atomic.Bool // set by Cluster.KillRank; the rank's NIC goes dark

	// Matching state, partitioned per agent: owned by each partition's
	// offload goroutine in Offload mode, guarded by mu in Direct mode
	// (which always runs a single partition).
	mu      chan struct{} // 1-token semaphore as the "global MPI lock"
	engines []*rtEngine

	stop atomic.Bool

	// Stats counts operations for tests and diagnostics. Polls counts
	// engine progress polls (offload-loop wakeups, Direct-mode drains):
	// Polls / (Sends + Recvs) is the wall-clock PollsPerCompletion, the
	// polling-overhead figure the simulator tracks as a first-class
	// metric.
	Sends, Recvs, Progress, Polls atomic.Int64
	// WatchdogTrips counts WaitErr deadline expirations on this rank.
	WatchdogTrips atomic.Int64
	// wdArmed counts WaitErr calls currently spinning under a deadline
	// (telemetry: how many waiters the watchdog is guarding right now).
	wdArmed atomic.Int64

	// Flight recorder: the bounded ring of recent transitions, plus the
	// per-slot operation generation that keeps recycled pool slots from
	// aliasing Chrome spans (see flight.go).
	flightR *flightRing
	opGen   []atomic.Int64

	// Wall-clock latency histograms for the offload path, collected only
	// while Cluster.SetStatsEnabled(true): queue-wait (enqueue→dequeue) and
	// offload service (dequeue→operation done). Concurrent-safe.
	qwaitH, serviceH obs.AtomicHist
}

type cmdKind int

const (
	cmdSend cmdKind = iota
	cmdRecv
)

type cmd struct {
	kind  cmdKind
	slot  int
	peer  int
	tag   int
	buf   []byte
	enqNs int64 // wall-clock enqueue stamp; 0 unless stats are enabled
}

// Options tunes a cluster's offload submission path. The zero value
// selects the defaults.
type Options struct {
	// ShardCount is the number of private SPSC command shards per rank —
	// one per thread that calls RegisterThread; later registrants share
	// the overflow shard (default 16).
	ShardCount int
	// CmdBatchMax bounds how many commands the offload goroutine drains
	// per wakeup before a progress round (default 16).
	CmdBatchMax int
	// Agents is the number of offload goroutines per rank in Offload mode
	// (default 1 — the paper's configuration). Each agent owns one
	// hash(peer, tag) partition of the rank's matching engine. Direct mode
	// ignores it (the global lock is the whole point there).
	Agents int
	// FlightRingCap is the per-rank flight-recorder capacity in records,
	// rounded up to a power of two (default 4096).
	FlightRingCap int
	// FlightDump, when non-empty, is the file an automatic flight-recorder
	// post-mortem is written to on the first watchdog trip (equivalent to
	// calling SetFlightDump). Empty disables the automatic dump.
	FlightDump string
	// Transport selects the wire backend for an in-process cluster: nil
	// runs the default Loopback (direct in-process delivery, the
	// historical behavior); a socket mesh (transport.NewSocketMesh) moves
	// every payload through real TCP or Unix-domain sockets, optionally
	// wrapped in Lossy/Reliable chaos layers (transport.WrapMesh). The
	// cluster takes ownership: Close closes the mesh. Its Size must match
	// the rank count. Multi-process runs use NewWorkerCluster instead.
	Transport transport.Mesh
}

// Cluster is a set of real-time ranks. With NewCluster/NewClusterOpts all
// ranks live in this process; with NewWorkerCluster the cluster holds one
// local rank of a multi-process job and `ranks` has a single entry.
type Cluster struct {
	ranks    []*Rank
	size     int            // job size (== len(ranks) except in worker mode)
	mesh     transport.Mesh // in-process backend; nil in worker mode
	peerDown []atomic.Bool  // ranks considered dead (KillRank, send failures)
	mode     Mode
	batchMax int
	wdNs     atomic.Int64 // WaitErr deadline (wall-clock ns); 0 = no deadline
	statsOn  atomic.Bool  // latency-histogram collection gate
	wg       sync.WaitGroup
	closed   atomic.Bool

	// Flight-recorder state (see flight.go): the recording gate (default
	// on), the automatic post-mortem path, and the dumped-once latch.
	flightOn     atomic.Bool
	flightPath   atomic.Pointer[string]
	flightDumped atomic.Bool

	// Live-telemetry state (see telemetry.go): duty-cycle timing in the
	// offload loops runs only while a registry is attached.
	telemOn      atomic.Bool
	telemStartNs atomic.Int64
}

// SetStatsEnabled toggles wall-clock latency-histogram collection on the
// offload path. Off (the default) the hot path pays one atomic load and
// never calls time.Now; on, every offloaded command records its queue-wait
// and service time. Safe to toggle concurrently with traffic.
func (c *Cluster) SetStatsEnabled(on bool) { c.statsOn.Store(on) }

// RankStats is a point-in-time snapshot of one rank's counters and, when
// stats collection was enabled, its wall-clock latency histograms (ns).
type RankStats struct {
	Sends, Recvs, Progress, WatchdogTrips int64
	QueueWait, Service                    obs.Hist
}

// Stats snapshots the rank's counters and histograms.
func (r *Rank) Stats() RankStats {
	return RankStats{
		Sends:         r.Sends.Load(),
		Recvs:         r.Recvs.Load(),
		Progress:      r.Progress.Load(),
		WatchdogTrips: r.WatchdogTrips.Load(),
		QueueWait:     r.qwaitH.Snapshot(),
		Service:       r.serviceH.Snapshot(),
	}
}

// statsPass reads every rank's counters and histograms once, in rank order.
func (c *Cluster) statsPass() RankStats {
	var s RankStats
	for _, r := range c.ranks {
		rs := r.Stats()
		s.Sends += rs.Sends
		s.Recvs += rs.Recvs
		s.Progress += rs.Progress
		s.WatchdogTrips += rs.WatchdogTrips
		s.QueueWait.Add(rs.QueueWait)
		s.Service.Add(rs.Service)
	}
	return s
}

// Stats aggregates every rank's snapshot (histograms merged) into a
// coherent point-in-time view: the per-rank counters are lock-free and a
// single pass can tear mid-burst (rank 0 read before its send, rank 1
// after the matching receive), so Stats re-reads until two consecutive
// passes agree — a seqlock with the data as its own version. Under
// sustained traffic the counters never sit still; after a bounded number
// of passes the latest (momentarily torn) snapshot is returned rather
// than spinning forever.
func (c *Cluster) Stats() RankStats {
	prev := c.statsPass()
	for i := 0; i < 8; i++ {
		cur := c.statsPass()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// SetWatchdog bounds every subsequent WaitErr by d of wall-clock time
// (0 disables the bound). Safe to call concurrently with waits.
func (c *Cluster) SetWatchdog(d time.Duration) { c.wdNs.Store(int64(d)) }

// NewCluster builds n ranks in the given mode with default Options.
// Offload mode spawns one offload goroutine per rank; call Close to stop
// and join them.
func NewCluster(n int, mode Mode) *Cluster { return NewClusterOpts(n, mode, Options{}) }

// NewClusterOpts is NewCluster with explicit submission-path tuning.
func NewClusterOpts(n int, mode Mode, o Options) *Cluster {
	mesh := o.Transport
	if mesh == nil {
		mesh = transport.NewLoopback(n)
	}
	if mesh.Size() != n {
		panic(fmt.Sprintf("rt: transport mesh size %d != rank count %d", mesh.Size(), n))
	}
	c := newCluster(n, mode, o)
	c.mesh = mesh
	for i := 0; i < n; i++ {
		c.addRank(i, mesh.Endpoint(i), o)
	}
	c.start()
	return c
}

// NewWorkerCluster builds this process's single rank of a multi-process
// job: ep is the rank's socket endpoint (transport.Listen, typically from
// transport.EnvConfig under a cmd/mpirun launch). Size() reports the full
// job size; Rank(i) is only valid for the local rank (see Local). Every
// worker must use identical Options — the engine-partition hash must
// agree on both ends of each message. Close closes the endpoint.
func NewWorkerCluster(ep transport.Endpoint, mode Mode, o Options) *Cluster {
	c := newCluster(ep.Size(), mode, o)
	c.addRank(ep.Rank(), ep, o)
	c.start()
	return c
}

// newCluster builds the rankless shell.
func newCluster(size int, mode Mode, o Options) *Cluster {
	batch := o.CmdBatchMax
	if batch <= 0 {
		batch = 16
	}
	c := &Cluster{size: size, mode: mode, batchMax: batch, peerDown: make([]atomic.Bool, size)}
	c.flightOn.Store(true)
	if o.FlightDump != "" {
		c.SetFlightDump(o.FlightDump)
	}
	return c
}

// addRank builds one local rank attached to ep and binds the delivery
// upcall.
func (c *Cluster) addRank(id int, ep transport.Endpoint, o Options) {
	shards := o.ShardCount
	if shards <= 0 {
		shards = 16
	}
	agents := o.Agents
	if agents <= 0 || c.mode != Offload {
		agents = 1
	}
	flightCap := o.FlightRingCap
	if flightCap <= 0 {
		flightCap = 1 << 12
	}
	r := &Rank{
		id:       id,
		cluster:  c,
		mode:     c.mode,
		pool:     reqpool.New(1 << 12),
		count:    make([]int32, 1<<12),
		peer:     make([]int32, 1<<12),
		mu:       make(chan struct{}, 1),
		ep:       ep,
		doneBell: make(chan struct{}, 1),
		flightR:  newFlightRing(flightCap),
		opGen:    make([]atomic.Int64, 1<<12),
	}
	for a := 0; a < agents; a++ {
		r.engines = append(r.engines, &rtEngine{
			idx:        a,
			inbox:      queue.NewMPMC[message](1 << 12),
			posted:     make(map[matchKey][]pending),
			unexpected: make(map[matchKey][]message),
			cq:         queue.NewSharded[cmd](shards, 1<<8, 1<<12),
			bell:       make(chan struct{}, 1),
		})
	}
	ep.Bind(r.deliver)
	c.ranks = append(c.ranks, r)
}

// start spawns the offload agents.
func (c *Cluster) start() {
	if c.mode != Offload {
		return
	}
	for _, r := range c.ranks {
		for _, e := range r.engines {
			c.wg.Add(1)
			// Label each offload goroutine with its rank and agent so
			// real CPU profiles (go tool pprof -tagfocus/-taghide)
			// attribute samples to agents instead of one anonymous
			// goroutine blur.
			go func(r *Rank, e *rtEngine) {
				labels := pprof.Labels(
					"rt_rank", strconv.Itoa(r.id),
					"rt_agent", strconv.Itoa(e.idx))
				pprof.Do(context.Background(), labels, func(context.Context) {
					r.offloadLoop(e)
				})
			}(r, e)
		}
	}
}

// AgentsPerRank reports the offload-goroutine (engine-partition) count.
func (c *Cluster) AgentsPerRank() int { return len(c.ranks[0].engines) }

// engIdx routes a (peer, tag) pair to its owning engine partition. The
// same function runs on both ends: a sender picks its executing agent with
// engIdx(dst, tag), delivers into the target's partition engIdx(src, tag),
// and the receiver posts its receive to partition engIdx(src, tag) — so a
// given (peer, tag) conversation always has one owner per rank.
func (r *Rank) engIdx(peer, tag int) int {
	if len(r.engines) == 1 {
		return 0
	}
	h := uint32(peer)*0x9E3779B1 ^ uint32(tag)*0x85EBCA77
	h ^= h >> 16
	return int(h % uint32(len(r.engines)))
}

// Rank returns rank i's handle: nil when i is not hosted by this process
// (worker mode holds only its own rank).
func (c *Cluster) Rank(i int) *Rank {
	if len(c.ranks) == c.size {
		return c.ranks[i]
	}
	for _, r := range c.ranks {
		if r.id == i {
			return r
		}
	}
	return nil
}

// Local returns the process-local rank — the only one in worker mode, rank
// 0 in an in-process cluster.
func (c *Cluster) Local() *Rank { return c.ranks[0] }

// KillRank simulates a process failure of rank i: the cluster marks it
// down (sends addressed to it complete locally and are discarded at the
// wire), its local offload goroutines — if it lives in this process —
// stop, and operations blocked on it surface ErrRankFailed from WaitErr
// once the watchdog deadline passes. Idempotent; safe to call concurrently
// with traffic. The dead rank's own outstanding handles are abandoned —
// a killed process has no one left to wait on them.
func (c *Cluster) KillRank(i int) {
	c.peerDown[i].Store(true)
	r := c.Rank(i)
	if r == nil || !r.failed.CompareAndSwap(false, true) {
		return
	}
	r.flight(fkKillRank, -1, i, 0, 0)
	r.stop.Store(true)
	for _, e := range r.engines {
		ring(e.bell) // wake napping agents so they observe the stop
	}
}

// Failed reports whether rank i is considered dead: killed by KillRank, or
// unreachable at the transport (a send to it returned a hard error).
func (c *Cluster) Failed(i int) bool { return c.peerDown[i].Load() }

// Size returns the number of ranks in the job (all of them, including the
// remote ones in worker mode).
func (c *Cluster) Size() int { return c.size }

// Close stops the offload goroutines and blocks until every one has
// exited, so tests can re-create clusters without leaking or racing the
// previous cluster's loops. The transport closes before the join: a socket
// backend's blocked reads and writes unwind when their fds close, so an
// offload goroutine stuck mid-Send (in-flight wire op) cannot deadlock the
// join or leak — the close-ordering contract the leak tests pin down.
// Idempotent: extra Closes return immediately.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, r := range c.ranks {
		r.stop.Store(true)
		for _, e := range r.engines {
			ring(e.bell)
		}
	}
	if c.mesh != nil {
		c.mesh.Close()
	} else {
		for _, r := range c.ranks {
			r.ep.Close()
		}
	}
	c.wg.Wait()
}

// Handle identifies an in-flight operation (a request-pool slot).
type Handle int

// Thread is a per-goroutine submission handle: its operations post into
// the goroutine's private SPSC command shard (one per engine partition),
// so concurrent posters never contend on a shared cache line. Obtain one
// per goroutine with RegisterThread and do not share it — the shards are
// single-producer.
type Thread struct {
	r      *Rank
	shards []int // one registered shard per engine partition
}

// RegisterThread claims a private command shard for the calling goroutine
// in every engine partition. Once a partition's ShardCount shards are
// taken, later registrants transparently share its MPMC overflow shard
// (correct, just contended). In Direct mode the handle simply forwards to
// the rank.
func (r *Rank) RegisterThread() *Thread {
	th := &Thread{r: r, shards: make([]int, len(r.engines))}
	for i, e := range r.engines {
		th.shards[i] = e.cq.Register()
	}
	return th
}

// Rank returns the rank this thread submits to.
func (th *Thread) Rank() *Rank { return th.r }

// Isend starts a nonblocking send through the thread's private shard.
func (th *Thread) Isend(buf []byte, dst, tag int) Handle {
	i := th.r.engIdx(dst, tag)
	return th.r.isend(i, th.shards[i], buf, dst, tag)
}

// Irecv starts a nonblocking receive through the thread's private shard.
func (th *Thread) Irecv(buf []byte, src, tag int) Handle {
	i := th.r.engIdx(src, tag)
	return th.r.irecv(i, th.shards[i], buf, src, tag)
}

// Send is the blocking send (Isend + Wait).
func (th *Thread) Send(buf []byte, dst, tag int) { th.r.Wait(th.Isend(buf, dst, tag)) }

// Recv is the blocking receive; it returns the received byte count.
func (th *Thread) Recv(buf []byte, src, tag int) int { return th.r.Wait(th.Irecv(buf, src, tag)) }

// Wait forwards to the rank's Wait.
func (th *Thread) Wait(h Handle) int { return th.r.Wait(h) }

// WaitErr forwards to the rank's WaitErr.
func (th *Thread) WaitErr(h Handle) (int, error) { return th.r.WaitErr(h) }

// Test forwards to the rank's Test.
func (th *Thread) Test(h Handle) (bool, int) { return th.r.Test(h) }

// spin is an adaptive wait for the rt layer's progress loops: hot Gosched
// yields for the first spinHot rounds, then parks. Parking is what keeps
// a socket backend fast on saturated GOMAXPROCS: pure Gosched spinners
// keep every P permanently runnable, the Go scheduler then never blocks
// on netpoll, and socket readiness is only noticed on sysmon's 10 ms
// retake tick — a 20 ms ping-pong on a 1-CPU host. An idle P lets the
// scheduler block on netpoll and wire wakeups return to microseconds.
//
// Parking comes in two flavors. Loops with a producer that can signal
// them block on a doorbell channel (see ring/bell below) with napFallback
// as the lost-wakeup safety net; loops whose wakeup condition nobody
// signals (pool-slot recycling, a full queue draining) sleep napFallback
// outright via pause. Timer sleeps on a loaded host resolve at
// millisecond granularity no matter how short the request, so every
// latency-critical wakeup must ride a doorbell or an fd, never a timer.
type spin struct{ n int }

const (
	spinHot     = 64
	napFallback = time.Millisecond
)

// yield burns one hot round; false means the budget is spent and the
// caller should park.
func (s *spin) yield() bool {
	if s.n < spinHot {
		s.n++
		runtime.Gosched()
		return true
	}
	return false
}

func (s *spin) pause() {
	if !s.yield() {
		time.Sleep(napFallback)
	}
}

func (s *spin) reset() { s.n = 0 }

// ring taps a doorbell: a non-blocking send on a 1-buffered channel, so
// producers never block and redundant taps coalesce.
func ring(bell chan struct{}) {
	select {
	case bell <- struct{}{}:
	default:
	}
}

// lock/unlock implement the Direct-mode global lock.
func (r *Rank) lock()   { r.mu <- struct{}{} }
func (r *Rank) unlock() { <-r.mu }

// directPoll drives one waiter-side progress round under the global lock
// (Direct mode), counted as an engine poll.
func (r *Rank) directPoll() {
	r.Polls.Add(1)
	r.lock()
	r.drain(r.engines[0])
	r.unlock()
}

// parkWait parks a waiter on the completion doorbell once its hot-yield
// budget is spent; napFallback bounds the lost-wakeup race and the
// wake-one misdirection (a waiter woken by someone else's completion just
// re-checks and re-parks).
func (r *Rank) parkWait(slot int) {
	r.waiters.Add(1)
	if !r.pool.Done(slot) {
		select {
		case <-r.doneBell:
		case <-time.After(napFallback):
		}
	}
	r.waiters.Add(-1)
}

// napAgent parks an idle agent on its doorbell after the hot-yield budget
// is spent. The queues are re-checked after raising the napping flag —
// the Dekker handshake with the submitters' flag-then-ring — so a command
// posted during the race is never slept through.
func (r *Rank) napAgent(e *rtEngine) {
	e.napping.Store(true)
	if e.cq.Len() == 0 && e.inbox.Empty() && !r.stop.Load() {
		select {
		case <-e.bell:
		case <-time.After(napFallback):
		}
	}
	e.napping.Store(false)
}

// Isend starts a nonblocking send of buf to dst with tag. The payload is
// copied (eager), so buf is immediately reusable; the returned handle
// completes when the transport has accepted the message. Unregistered
// callers post through the shared overflow shard — use RegisterThread for
// the contention-free path.
func (r *Rank) Isend(buf []byte, dst, tag int) Handle {
	return r.isend(r.engIdx(dst, tag), queue.Overflow, buf, dst, tag)
}

func (r *Rank) isend(eng, shard int, buf []byte, dst, tag int) Handle {
	slot := r.getSlot()
	atomic.StoreInt32(&r.peer[slot], int32(dst))
	r.Sends.Add(1)
	if r.cluster.flightOn.Load() {
		id := int64(slot)<<32 | r.opGen[slot].Add(1)&0xFFFFFFFF
		r.flightR.record(time.Now().UnixNano(), id, packFlight(fkSubmitSend, eng, dst, tag))
	}
	if r.mode == Offload {
		data := append([]byte(nil), buf...) // serialize into the command
		c := cmd{kind: cmdSend, slot: slot, peer: dst, tag: tag, buf: data}
		if r.cluster.statsOn.Load() {
			c.enqNs = time.Now().UnixNano()
		}
		e := r.engines[eng]
		var sp spin
		for !e.cq.TryEnqueue(shard, c) {
			sp.pause()
		}
		if e.napping.Load() {
			ring(e.bell)
		}
		return Handle(slot)
	}
	r.lock()
	r.doSend(slot, dst, tag, append([]byte(nil), buf...))
	r.unlock()
	return Handle(slot)
}

// Irecv starts a nonblocking receive into buf from src with tag.
func (r *Rank) Irecv(buf []byte, src, tag int) Handle {
	return r.irecv(r.engIdx(src, tag), queue.Overflow, buf, src, tag)
}

func (r *Rank) irecv(eng, shard int, buf []byte, src, tag int) Handle {
	slot := r.getSlot()
	atomic.StoreInt32(&r.peer[slot], int32(src))
	r.Recvs.Add(1)
	if r.cluster.flightOn.Load() {
		id := int64(slot)<<32 | r.opGen[slot].Add(1)&0xFFFFFFFF
		r.flightR.record(time.Now().UnixNano(), id, packFlight(fkSubmitRecv, eng, src, tag))
	}
	if r.mode == Offload {
		c := cmd{kind: cmdRecv, slot: slot, peer: src, tag: tag, buf: buf}
		if r.cluster.statsOn.Load() {
			c.enqNs = time.Now().UnixNano()
		}
		e := r.engines[eng]
		var sp spin
		for !e.cq.TryEnqueue(shard, c) {
			sp.pause()
		}
		if e.napping.Load() {
			ring(e.bell)
		}
		return Handle(slot)
	}
	r.lock()
	r.doRecv(slot, src, tag, buf)
	r.unlock()
	return Handle(slot)
}

// Send is the blocking send.
func (r *Rank) Send(buf []byte, dst, tag int) { r.Wait(r.Isend(buf, dst, tag)) }

// Recv is the blocking receive; it returns the received byte count.
func (r *Rank) Recv(buf []byte, src, tag int) int { return r.Wait(r.Irecv(buf, src, tag)) }

// Wait blocks until the operation completes, releasing the handle; for
// receives it returns the received byte count. A negative count reports a
// failed receive (truncation — see WaitErr, which decodes it to an error).
func (r *Rank) Wait(h Handle) int {
	slot := int(h)
	var sp spin
	for !r.pool.Done(slot) {
		if r.mode == Direct {
			// The waiter must drive progress itself (and contends with
			// every other thread of this rank for the lock).
			r.directPoll()
			if r.pool.Done(slot) {
				break
			}
		}
		if !sp.yield() {
			r.parkWait(slot)
		}
	}
	n := int(atomic.LoadInt32(&r.count[slot]))
	r.pool.Put(slot)
	return n
}

// WaitErr is Wait bounded by the cluster's watchdog deadline: when the
// operation is still incomplete after SetWatchdog's duration it returns
// ErrTimeout instead of spinning forever (a hung peer, a never-posted
// receive). It also decodes the slot's error sentinel: a truncated receive
// returns ErrTruncate. The timed-out request stays live and its pool slot
// is intentionally leaked — the engine may still complete it later, and
// recycling the slot under an in-flight operation would corrupt the pool
// (MPI has no safe MPI_Request_free for active requests either).
func (r *Rank) WaitErr(h Handle) (int, error) {
	d := time.Duration(r.cluster.wdNs.Load())
	if d <= 0 {
		return decodeCount(r.Wait(h))
	}
	slot := int(h)
	deadline := time.Now().Add(d)
	r.wdArmed.Add(1)
	defer r.wdArmed.Add(-1)
	var sp spin
	for !r.pool.Done(slot) {
		if r.mode == Direct {
			r.directPoll()
			if r.pool.Done(slot) {
				break
			}
		}
		if time.Now().After(deadline) {
			r.WatchdogTrips.Add(1)
			p := int(atomic.LoadInt32(&r.peer[slot]))
			if r.cluster.flightOn.Load() {
				r.flight(fkWatchdog, -1, p, 0, r.opID(slot))
			}
			if p >= 0 && p < r.cluster.Size() && r.cluster.Failed(p) {
				r.cluster.autoFlightDump("rank-failed")
				return 0, fmt.Errorf("%w (rank %d slot %d peer %d after %v)", ErrRankFailed, r.id, slot, p, d)
			}
			r.cluster.autoFlightDump("timeout")
			return 0, fmt.Errorf("%w (rank %d slot %d after %v)", ErrTimeout, r.id, slot, d)
		}
		if !sp.yield() {
			r.parkWait(slot)
		}
	}
	n := int(atomic.LoadInt32(&r.count[slot]))
	r.pool.Put(slot)
	return decodeCount(n)
}

// decodeCount maps the slot byte-count sentinel space to (count, error).
func decodeCount(n int) (int, error) {
	if n < 0 {
		return 0, ErrTruncate
	}
	return n, nil
}

// Test reports completion without blocking; on success the handle is
// released and the received byte count returned (negative = failed, as in
// Wait).
func (r *Rank) Test(h Handle) (bool, int) {
	slot := int(h)
	if r.mode == Direct {
		r.directPoll()
	}
	if !r.pool.Done(slot) {
		return false, 0
	}
	n := int(atomic.LoadInt32(&r.count[slot]))
	r.pool.Put(slot)
	return true, n
}

// getSlot allocates a request-pool slot with its byte count cleared: slots
// recycle, and a send completion never writes the count, so a stale value
// from the slot's previous receive would otherwise leak into the next
// operation's Wait.
func (r *Rank) getSlot() int {
	for {
		if s := r.pool.Get(); s != reqpool.None {
			atomic.StoreInt32(&r.count[s], 0)
			return s
		}
		runtime.Gosched()
	}
}

// doSend runs in engine context (offload goroutine, or under the lock)
// and hands the payload to the wire as a flow-stamped frame. A send to a
// dead rank completes locally — the eager payload was accepted by the
// transport — but goes nowhere (sending into a dead rank's NIC would
// wedge the sender's engine once nothing drains it); a transport hard
// error marks the peer down the same way, so later operations fail fast
// instead of re-timing-out one by one.
func (r *Rank) doSend(slot, dst, tag int, data []byte) {
	if !r.cluster.peerDown[dst].Load() {
		seq := r.flowSeq.Add(1)
		f := transport.Frame{
			Kind: transport.KindData,
			Src:  r.id,
			Dst:  dst,
			Tag:  tag,
			Flow: transport.FlowID(r.id, seq),
			Data: data,
		}
		if err := r.ep.Send(f); err != nil {
			r.cluster.peerDown[dst].Store(true)
		}
	}
	r.pool.SetDone(slot)
	r.wakeWaiters()
	if r.cluster.flightOn.Load() {
		r.flight(fkComplete, r.engIdx(dst, tag), dst, tag, r.opID(slot))
	}
}

// wakeWaiters rings the completion doorbell when any Wait is parked.
func (r *Rank) wakeWaiters() {
	if r.waiters.Load() > 0 {
		ring(r.doneBell)
	}
}

// deliver is the transport upcall: it runs on the wire's delivery
// goroutine — the sender's own, for Loopback; a socket-reader, for real
// backends — and enqueues the frame into the engine partition that owns
// (src, tag), the partition the receiver posts its matching receives to.
// A full inbox applies backpressure by spinning, bounded by rank death
// and cluster shutdown so a blocked delivery can never outlive Close.
func (r *Rank) deliver(f transport.Frame) {
	if f.Kind != transport.KindData || r.failed.Load() {
		return
	}
	e := r.engines[r.engIdx(f.Src, f.Tag)]
	var sp spin
	for !e.inbox.TryEnqueue(message{src: f.Src, tag: f.Tag, data: f.Data}) {
		if r.failed.Load() || r.stop.Load() {
			return
		}
		sp.pause()
	}
	if e.napping.Load() {
		ring(e.bell)
	}
	if r.mode == Direct && r.waiters.Load() > 0 {
		// Direct mode has no agent: a parked waiter is the only one who
		// will drain this delivery.
		ring(r.doneBell)
	}
}

// doRecv runs in engine context.
func (r *Rank) doRecv(slot, src, tag int, buf []byte) {
	e := r.engines[r.engIdx(src, tag)]
	k := matchKey{src, tag}
	if q := e.unexpected[k]; len(q) > 0 {
		m := q[0]
		if len(q) == 1 {
			delete(e.unexpected, k)
		} else {
			e.unexpected[k] = q[1:]
		}
		r.landMessage(slot, buf, m)
		return
	}
	e.posted[k] = append(e.posted[k], pending{slot: slot, buf: buf})
}

// landMessage completes a receive. A message longer than the posted buffer
// fails the request with the truncation sentinel (payload dropped, like
// MPI_ERR_TRUNCATE) instead of crashing the whole process: the waiter sees
// a negative count and WaitErr turns it into ErrTruncate.
func (r *Rank) landMessage(slot int, buf []byte, m message) {
	if len(m.data) > len(buf) {
		atomic.StoreInt32(&r.count[slot], truncSentinel)
		r.pool.SetDone(slot)
		r.wakeWaiters()
		if r.cluster.flightOn.Load() {
			r.flight(fkComplete, r.engIdx(m.src, m.tag), m.src, m.tag, r.opID(slot))
		}
		return
	}
	copy(buf, m.data)
	atomic.StoreInt32(&r.count[slot], int32(len(m.data)))
	r.pool.SetDone(slot)
	r.wakeWaiters()
	if r.cluster.flightOn.Load() {
		r.flight(fkComplete, r.engIdx(m.src, m.tag), m.src, m.tag, r.opID(slot))
	}
}

// drain processes every delivered message of one partition (engine
// context).
func (r *Rank) drain(e *rtEngine) {
	for {
		m, ok := e.inbox.TryDequeue()
		if !ok {
			return
		}
		r.Progress.Add(1)
		k := matchKey{m.src, m.tag}
		if q := e.posted[k]; len(q) > 0 {
			p := q[0]
			if len(q) == 1 {
				delete(e.posted, k)
			} else {
				e.posted[k] = q[1:]
			}
			r.landMessage(p.slot, p.buf, m)
			continue
		}
		e.unexpected[k] = append(e.unexpected[k], m)
	}
}

// offloadLoop is one dedicated communication goroutine (§3): it alone
// touches its partition of the matching engine — no locks anywhere. Each
// wakeup drains up to batchMax commands, walking only the occupied
// submission shards, then lands whatever the transport delivered.
func (r *Rank) offloadLoop(e *rtEngine) {
	defer r.cluster.wg.Done()
	r.flight(fkAgentStart, e.idx, 0, 0, 0)
	defer r.flight(fkAgentStop, e.idx, 0, 0, 0)
	batch := make([]cmd, r.cluster.batchMax)
	var idle spin
	for !r.stop.Load() {
		r.Polls.Add(1)
		// Duty-cycle accounting for the live telemetry endpoint: each
		// wakeup's wall time is charged busy or idle by whether it found
		// work. Gated so the default loop never calls time.Now.
		var dutyT0 int64
		if r.cluster.telemOn.Load() {
			dutyT0 = time.Now().UnixNano()
		}
		n := e.cq.DequeueBatch(batch)
		flightLive := n > 0 && r.cluster.flightOn.Load()
		for i := range batch[:n] {
			c := &batch[i]
			if flightLive {
				k := fkIssueSend
				if c.kind == cmdRecv {
					k = fkIssueRecv
				}
				r.flight(k, e.idx, c.peer, c.tag, r.opID(c.slot))
			}
			var startNs int64
			if c.enqNs != 0 {
				startNs = time.Now().UnixNano()
				r.qwaitH.Observe(startNs - c.enqNs)
			}
			switch c.kind {
			case cmdSend:
				r.doSend(c.slot, c.peer, c.tag, c.buf)
			case cmdRecv:
				r.doRecv(c.slot, c.peer, c.tag, c.buf)
			}
			if startNs != 0 {
				r.serviceH.Observe(time.Now().UnixNano() - startNs)
			}
			c.buf = nil // release the payload reference
		}
		worked := n > 0
		if !e.inbox.Empty() {
			r.drain(e)
			worked = true
		}
		if dutyT0 != 0 {
			dt := time.Now().UnixNano() - dutyT0
			if worked {
				e.busyNs.Add(dt)
			} else {
				e.idleNs.Add(dt)
			}
		}
		if worked {
			idle.reset()
		} else if !idle.yield() {
			r.napAgent(e)
		}
	}
}
