package rt

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpioffload/internal/fault"
	"mpioffload/internal/transport"
)

// The transport conformance suite: the same rt-level contracts the
// loopback tests pin down, re-run over real Unix-domain sockets. The
// cluster code paths are identical by construction (Options.Transport is
// the only difference), so what these actually test is that the socket
// backend honors the wire contract the engine assumes: reliable,
// per-(src,tag)-ordered, duplicate-free delivery.

// netMeshes enumerates the backends the conformance suite runs over.
func netMeshes(t *testing.T, n int) map[string]func() transport.Mesh {
	t.Helper()
	return map[string]func() transport.Mesh{
		"loopback": func() transport.Mesh { return transport.NewLoopback(n) },
		"unix": func() transport.Mesh {
			m, err := transport.NewSocketMesh("unix", n)
			if err != nil {
				t.Fatalf("socket mesh: %v", err)
			}
			return m
		},
	}
}

func TestNetBackendPingPong(t *testing.T) {
	for name, mk := range netMeshes(t, 2) {
		for _, m := range modes() {
			m := m
			mk := mk
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				c := NewClusterOpts(2, m, Options{Transport: mk()})
				defer c.Close()
				var wg sync.WaitGroup
				msg := []byte("over the wire")
				wg.Add(2)
				go func() {
					defer wg.Done()
					r := c.Rank(0)
					r.Send(msg, 1, 7)
					buf := make([]byte, 64)
					n := r.Recv(buf, 1, 8)
					if !bytes.Equal(buf[:n], msg) {
						t.Errorf("echo corrupted: %q", buf[:n])
					}
				}()
				go func() {
					defer wg.Done()
					r := c.Rank(1)
					buf := make([]byte, 64)
					n := r.Recv(buf, 0, 7)
					r.Send(buf[:n], 0, 8)
				}()
				wg.Wait()
			})
		}
	}
}

func TestNetBackendNonOvertaking(t *testing.T) {
	for name, mk := range netMeshes(t, 2) {
		for _, m := range modes() {
			m := m
			mk := mk
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				c := NewClusterOpts(2, m, Options{Transport: mk()})
				defer c.Close()
				const k = 200
				done := make(chan bool, 2)
				go func() {
					r := c.Rank(0)
					for i := 0; i < k; i++ {
						r.Send([]byte{byte(i)}, 1, 3)
					}
					done <- true
				}()
				go func() {
					r := c.Rank(1)
					buf := make([]byte, 1)
					for i := 0; i < k; i++ {
						r.Recv(buf, 0, 3)
						if buf[0] != byte(i) {
							t.Errorf("message %d overtaken: got %d", i, buf[0])
							done <- false
							return
						}
					}
					done <- true
				}()
				if !<-done || !<-done {
					t.FailNow()
				}
			})
		}
	}
}

func TestNetBackendConcurrentThreads(t *testing.T) {
	for name, mk := range netMeshes(t, 2) {
		for _, m := range modes() {
			m := m
			mk := mk
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
				c := NewClusterOpts(2, m, Options{Transport: mk(), ShardCount: 4})
				defer c.Close()
				const threads = 4
				const iters = 30
				var wg sync.WaitGroup
				for th := 0; th < threads; th++ {
					th := th
					wg.Add(2)
					go func() {
						defer wg.Done()
						r := c.Rank(0)
						t0 := r.RegisterThread()
						out := []byte{byte(th)}
						in := make([]byte, 1)
						for i := 0; i < iters; i++ {
							t0.Send(out, 1, 100+th)
							t0.Recv(in, 1, 200+th)
							if in[0] != byte(th+1) {
								t.Errorf("thread %d got %d", th, in[0])
								return
							}
						}
						_ = r
					}()
					go func() {
						defer wg.Done()
						t1 := c.Rank(1).RegisterThread()
						in := make([]byte, 1)
						out := []byte{byte(th + 1)}
						for i := 0; i < iters; i++ {
							t1.Recv(in, 0, 100+th)
							t1.Send(out, 0, 200+th)
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// TestNetBackendLargePayload: payloads far beyond a kernel socket buffer
// survive the trip intact (the socket write path blocks and resumes).
func TestNetBackendLargePayload(t *testing.T) {
	for name, mk := range netMeshes(t, 2) {
		mk := mk
		t.Run(name, func(t *testing.T) {
			c := NewClusterOpts(2, Offload, Options{Transport: mk()})
			defer c.Close()
			const size = 4 << 20
			out := make([]byte, size)
			for i := range out {
				out[i] = byte(i * 31)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				in := make([]byte, size)
				n := c.Rank(1).Recv(in, 0, 1)
				if n != size {
					t.Errorf("received %d bytes, want %d", n, size)
					return
				}
				if !bytes.Equal(in, out) {
					t.Error("4 MiB payload corrupted in transit")
				}
			}()
			c.Rank(0).Send(out, 1, 1)
			<-done
		})
	}
}

// TestNetBackendLossyReliable: the full chaos stack — rt engine over
// Reliable over Lossy over real Unix sockets, a seeded fault plan
// dropping, duplicating and reordering the wire — with 4 submitter
// threads per rank (the ISSUE's -race probe shape; the Makefile race
// target runs this package under -race). The rt layer must neither lose
// nor reorder a single message.
func TestNetBackendLossyReliable(t *testing.T) {
	base, err := transport.NewSocketMesh("unix", 2)
	if err != nil {
		t.Fatal(err)
	}
	mesh := transport.WrapMesh(base, func(ep transport.Endpoint) transport.Endpoint {
		return transport.NewReliable(
			transport.NewLossy(ep, chaosNetPlan()),
			transport.RelOptions{})
	})
	c := NewClusterOpts(2, Offload, Options{Transport: mesh, ShardCount: 4})
	defer c.Close()
	const threads = 4
	const iters = 100
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		th := th
		wg.Add(2)
		go func() { // rank 0 submitter: sequenced stream out, echo back
			defer wg.Done()
			t0 := c.Rank(0).RegisterThread()
			in := make([]byte, 2)
			for i := 0; i < iters; i++ {
				t0.Send([]byte{byte(th), byte(i)}, 1, 10+th)
				t0.Recv(in, 1, 50+th)
				if in[0] != byte(th) || in[1] != byte(i) {
					t.Errorf("thread %d iter %d echoed %v", th, i, in)
					return
				}
			}
		}()
		go func() { // rank 1 submitter: echo, checking order
			defer wg.Done()
			t1 := c.Rank(1).RegisterThread()
			in := make([]byte, 2)
			for i := 0; i < iters; i++ {
				t1.Recv(in, 0, 10+th)
				if in[1] != byte(i) {
					t.Errorf("thread %d: message %d arrived at position %d — wire chaos leaked through", th, in[1], i)
					return
				}
				t1.Send(in, 0, 50+th)
			}
		}()
	}
	wg.Wait()
	// The plan must actually have fired or the test proved nothing.
	rel := mesh.Endpoint(0).(*transport.Reliable)
	if rs := rel.RelStats(); rs.Retransmits == 0 && rs.DupDropped == 0 && rs.OutOfOrder == 0 {
		t.Errorf("chaos plan never perturbed the wire: %+v", rs)
	}
}

// TestCloseWithInFlightSocketOps pins the close-ordering contract: a
// cluster whose offload agent is blocked mid-write into a full kernel
// socket buffer (the peer accepted the connection but never drains) must
// Close promptly and leak neither goroutines nor fds.
func TestCloseWithInFlightSocketOps(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	// The black hole: listens and accepts, but never binds a handler, so
	// its reader stops pulling and the sender's kernel buffer fills.
	hole, err := transport.Listen(transport.SocketConfig{Network: "unix", Rank: 1, Size: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := transport.Listen(transport.SocketConfig{Network: "unix", Rank: 0, Size: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := NewWorkerCluster(ep, Offload, Options{})
	r := c.Local()
	// Flood enough bytes to fill any kernel buffer several times over, but
	// stay under the command queue's overflow capacity so the submitters
	// themselves never block: the agent is the one that must get stuck.
	payload := make([]byte, 64<<10)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Isend(payload, 1, 5)
			}
		}()
	}
	wg.Wait()
	time.Sleep(50 * time.Millisecond) // let the agent wedge into the full socket
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an in-flight socket write")
	}
	hole.Close()
	waitForGoroutines(t, before)
}

// waitForGoroutines polls the goroutine count back down to the baseline.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 128<<10)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosNetPlan returns the seeded fault plan for the rt-over-chaos test.
func chaosNetPlan() *fault.Plan {
	return &fault.Plan{Seed: 11, DropRate: 0.08, DupRate: 0.08, ReorderRate: 0.12}
}
