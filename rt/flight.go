package rt

// The flight recorder: a bounded, always-on wall-clock ring per rank that
// retains the most recent submit/issue/complete/agent transitions, so a
// watchdog trip in the real concurrent code (ErrTimeout/ErrRankFailed)
// comes with a post-mortem Chrome trace of the final milliseconds instead
// of just an error string.
//
// Design constraints, in order:
//
//  1. Disabled cost < 5 ns (one atomic load + branch), enforced by the same
//     benchmark-test discipline as internal/obs. Callers gate the hook with
//     Cluster.flightOn so argument evaluation is also skipped.
//  2. Race-clean under many concurrent writers: every slot field is an
//     atomic, and a version stamp (seqlock-style: written last, checked
//     twice around the read) lets the dump skip records torn by
//     wraparound. Two writers landing on the same slot can in principle
//     interleave field stores so that a stale version matches mixed
//     fields — that needs the ring to wrap within one hook's execution
//     window, and the worst case is one bogus diagnostic record in a
//     post-mortem, never unsafety. The recorder is best-effort by design.
//  3. Recycled pool slots must not merge distinct operations into one
//     Chrome span, so every operation gets a fresh id: slot<<32 | a
//     per-slot generation bumped at submit.
//
// The dump converts flight records into an obs.Trace through the public
// Recorder hooks and writes it with the existing Chrome exporter, so
// chrome://tracing, Perfetto, critpath.ReadChrome and cmd/tracetool all
// read flight dumps with zero new formats.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"mpioffload/internal/obs"
)

// flightKind discriminates flight-recorder records.
type flightKind uint8

const (
	fkInvalid    flightKind = iota // zero value: an unwritten slot
	fkSubmitSend                   // app thread enqueued a send command
	fkSubmitRecv                   // app thread enqueued a recv command
	fkIssueSend                    // agent dequeued + issued a send
	fkIssueRecv                    // agent dequeued + posted a recv
	fkComplete                     // operation's done flag set
	fkAgentStart                   // offload goroutine started
	fkAgentStop                    // offload goroutine exited
	fkWatchdog                     // WaitErr deadline expired
	fkKillRank                     // the rank was killed (peer = rank id)
)

// flight meta packing: kind | agent<<8 | tag<<16 (24 bits) | peer<<40
// (24 bits). Tags and peers beyond 24 bits are clamped — diagnostic
// fidelity, not correctness, is at stake.
const flightFieldMask = 1<<24 - 1

func packFlight(kind flightKind, agent, peer, tag int) uint64 {
	return uint64(kind) |
		uint64(uint8(agent))<<8 |
		uint64(tag&flightFieldMask)<<16 |
		uint64(peer&flightFieldMask)<<40
}

// flightEvent is one decoded record.
type flightEvent struct {
	ver   uint64
	ts    int64
	id    int64
	kind  flightKind
	agent int
	peer  int
	tag   int
}

func unpackFlight(ver uint64, ts, id int64, meta uint64) flightEvent {
	return flightEvent{
		ver:   ver,
		ts:    ts,
		id:    id,
		kind:  flightKind(meta & 0xFF),
		agent: int(int8(meta >> 8)), // -1 (0xFF) = no agent context
		tag:   int(meta >> 16 & flightFieldMask),
		peer:  int(meta >> 40 & flightFieldMask),
	}
}

// flightSlot is one ring entry. All fields are atomics so concurrent
// writers and the dumping reader are race-clean; ver is stored last by
// writers and read on both sides of the field reads by the dump.
type flightSlot struct {
	ver  atomic.Uint64
	ts   atomic.Int64
	id   atomic.Int64
	meta atomic.Uint64
}

// flightRing is one rank's bounded record ring (power-of-two capacity).
type flightRing struct {
	seq  atomic.Uint64
	mask uint64
	buf  []flightSlot
}

func newFlightRing(capacity int) *flightRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &flightRing{mask: uint64(n - 1), buf: make([]flightSlot, n)}
}

// record claims the next slot and writes the record. Concurrent-safe.
func (f *flightRing) record(ts, id int64, meta uint64) {
	seq := f.seq.Add(1) // 1-based: ver 0 marks an unwritten slot
	s := &f.buf[seq&f.mask]
	s.ver.Store(0) // invalidate while the fields are in flux
	s.ts.Store(ts)
	s.id.Store(id)
	s.meta.Store(meta)
	s.ver.Store(seq)
}

// snapshot decodes every stable record, oldest first.
func (f *flightRing) snapshot() []flightEvent {
	out := make([]flightEvent, 0, len(f.buf))
	for i := range f.buf {
		s := &f.buf[i]
		v1 := s.ver.Load()
		if v1 == 0 {
			continue
		}
		ts, id, meta := s.ts.Load(), s.id.Load(), s.meta.Load()
		if s.ver.Load() != v1 {
			continue // torn by a concurrent writer; drop the record
		}
		ev := unpackFlight(v1, ts, id, meta)
		if ev.kind == fkInvalid || ev.kind > fkKillRank {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ts != out[j].ts {
			return out[i].ts < out[j].ts
		}
		return out[i].ver < out[j].ver
	})
	return out
}

// recorded reports how many records were ever written (diagnostics).
func (f *flightRing) recorded() uint64 { return f.seq.Load() }

// flight records one event on the rank's ring. Callers on hot paths gate on
// cluster.flightOn themselves (so argument evaluation is skipped too); the
// guard here keeps cold callers honest.
func (r *Rank) flight(kind flightKind, agent, peer, tag int, id int64) {
	if !r.cluster.flightOn.Load() {
		return
	}
	r.flightR.record(time.Now().UnixNano(), id, packFlight(kind, agent, peer, tag))
}

// opID returns the slot's current operation id: slot<<32 | generation.
// Generations are bumped at submit, so a recycled slot never aliases the
// previous operation's Chrome span.
func (r *Rank) opID(slot int) int64 {
	return int64(slot)<<32 | r.opGen[slot].Load()&0xFFFFFFFF
}

// SetFlightRecorder toggles the flight recorder (default on). Off, every
// hook costs one atomic load and no time.Now call.
func (c *Cluster) SetFlightRecorder(on bool) { c.flightOn.Store(on) }

// SetFlightDump sets the file an automatic post-mortem is written to when a
// watchdog surfaces ErrTimeout or ErrRankFailed ("" disables the automatic
// dump; that is the default — libraries should not create files unasked).
// Only the first trip dumps; later trips of the same incident are almost
// always consequences of the first.
func (c *Cluster) SetFlightDump(path string) {
	c.flightPath.Store(&path)
}

// autoFlightDump writes the post-mortem on the first watchdog trip, if a
// dump path is configured.
func (c *Cluster) autoFlightDump(reason string) {
	path := c.flightPath.Load()
	if path == nil || *path == "" {
		return
	}
	if !c.flightDumped.CompareAndSwap(false, true) {
		return
	}
	f, err := os.Create(*path)
	if err != nil {
		return // post-mortem is best-effort; the caller still gets its error
	}
	defer f.Close()
	c.DumpFlight(f, reason)
}

// FlightDumped reports whether the automatic post-mortem has fired.
func (c *Cluster) FlightDumped() bool { return c.flightDumped.Load() }

// DumpFlight writes the flight recorder's retained window as a Chrome
// trace_event JSON post-mortem: one process per rank, command lifecycles as
// "queued"/"mpi" spans, agent starts/stops as agent.scale instants,
// watchdog trips and rank kills as watchdog instants. Timestamps are
// rebased to the window's start. The output parses with
// critpath.ReadChrome and cmd/tracetool. Safe to call at any time,
// including while traffic is in flight (in-flux records are dropped, not
// torn).
func (c *Cluster) DumpFlight(w io.Writer, reason string) error {
	n := len(c.ranks)
	perRank := make([][]flightEvent, n)
	var base, last int64
	total, written := 0, uint64(0)
	for i, r := range c.ranks {
		evs := r.flightR.snapshot()
		perRank[i] = evs
		total += len(evs)
		written += r.flightR.recorded()
		for _, ev := range evs {
			if base == 0 || ev.ts < base {
				base = ev.ts
			}
			if ev.ts > last {
				last = ev.ts
			}
		}
	}

	// Rebase and feed through the standard recorder hooks so the export is
	// the ordinary Chrome format. The per-id submit/issue stamps reconstruct
	// queue-wait and service durations for records whose predecessor is
	// still in the window (0 otherwise — the span begins are then dropped by
	// the exporter's orphan handling, keeping the JSON valid).
	ringCap := 1
	for _, evs := range perRank {
		if len(evs) > ringCap {
			ringCap = len(evs)
		}
	}
	tr := obs.NewTrace(obs.Options{RingCap: ringCap})
	run := tr.StartRun("flight "+reason, n)
	ends := make([]int64, n)
	for i, evs := range perRank {
		rec := run.Ranks[i]
		active := 0
		submitTS := make(map[int64]int64)
		issueTS := make(map[int64]int64)
		for _, ev := range evs {
			ts := ev.ts - base
			ends[i] = ts
			switch ev.kind {
			case fkSubmitSend, fkSubmitRecv:
				rec.CmdEnqueued(ts, obs.TApp, ev.id, 0)
				submitTS[ev.id] = ts
			case fkIssueSend, fkIssueRecv:
				wait := int64(0)
				if t0, ok := submitTS[ev.id]; ok {
					wait = ts - t0
				}
				rec.CmdDequeued(ts, ev.id, 0, wait)
				issueTS[ev.id] = ts
			case fkComplete:
				svc := int64(0)
				if t0, ok := issueTS[ev.id]; ok {
					svc = ts - t0
				}
				rec.CmdCompleted(ts, ev.id, 0, svc)
			case fkAgentStart:
				active++
				rec.AgentScaled(ts, active, +1)
			case fkAgentStop:
				active--
				rec.AgentScaled(ts, active, -1)
			case fkWatchdog, fkKillRank:
				rec.WatchdogTripped(ts, ev.peer)
			}
		}
	}
	run.SetEnd(last-base, ends)
	meta, _ := json.Marshal(map[string]any{
		"reason":       reason,
		"wall_base_ns": base,
		"events":       total,
		"recorded":     written,
		"mode":         c.mode.String(),
		"agents":       c.AgentsPerRank(),
	})
	tr.AddMeta("flight", meta)
	if err := obs.WriteChrome(w, tr); err != nil {
		return fmt.Errorf("rt: flight dump: %w", err)
	}
	return nil
}
